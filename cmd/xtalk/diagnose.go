package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/defects"
	"repro/internal/fleet"
	"repro/internal/report"
	"repro/internal/sim"
)

// The diagnose, minimize and rank subcommands run a base defect-simulation
// campaign and layer the internal/diagnose analytics on top, emitting the
// deterministic JSON documents of internal/report. Standalone runs go
// through a local campaign.Manager (the same path xtalkd serves); with
// -workers the base campaign — and, for minimize, every verification round —
// is distributed across fleet workers, and the identical analysis runs on
// the merged result.

// analysisFlags are the flags shared by the three analysis subcommands.
type analysisFlags struct {
	target     *string
	bus        *string
	size       *int
	seed       *int64
	compaction *bool
	engine     *string
	out        *string
	workers    *string
	shards     *int
}

func newAnalysisFlags(fs *flag.FlagSet) *analysisFlags {
	return &analysisFlags{
		target:     fs.String("target", "", "target backend: parwan (default) or widebusN"),
		bus:        fs.String("bus", "", "channel to test (default: addr for parwan, the target's first channel otherwise)"),
		size:       fs.Int("size", defects.DefaultLibrarySize, "defect library size"),
		seed:       fs.Int64("seed", 1, "random seed"),
		compaction: fs.Bool("compaction", false, "compact responses"),
		engine:     fs.String("engine", "auto", "simulation engine: auto, execute, or replay"),
		out:        fs.String("o", "", "write the JSON report to this file (default stdout)"),
		workers:    fs.String("workers", "", "comma-separated fleet worker base URLs; runs the campaigns distributed"),
		shards:     fs.Int("shards", 0, "fleet shard count (0 = 4 per worker)"),
	}
}

func (af *analysisFlags) spec(jobType string) (campaign.Spec, error) {
	_, _, _, busName, err := resolveTarget(*af.target, *af.bus)
	if err != nil {
		return campaign.Spec{}, err
	}
	return campaign.Spec{
		Target:     *af.target,
		Bus:        busName,
		Type:       jobType,
		Size:       *af.size,
		Seed:       *af.seed,
		Compaction: *af.compaction,
		Engine:     *af.engine,
	}, nil
}

func cmdDiagnose(args []string) error {
	fs := flag.NewFlagSet("diagnose", flag.ExitOnError)
	af := newAnalysisFlags(fs)
	signature := fs.String("signature", "",
		"comma-separated failing MA test names to localize, e.g. 'dr[3]/fwd,gp[2]/fwd'")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := af.spec(campaign.TypeDiagnose)
	if err != nil {
		return err
	}
	for _, s := range strings.Split(*signature, ",") {
		if s = strings.TrimSpace(s); s != "" {
			spec.Signature = append(spec.Signature, s)
		}
	}
	an, err := runAnalysis(spec, *af.workers, *af.shards)
	if err != nil {
		return err
	}
	d := an.Diagnosis
	fmt.Fprintf(os.Stderr, "diagnose: %s bus, %d defects: %d detected, %d attributed (%d crash-only), %d signature classes over %d tests\n",
		spec.Bus, d.Stats.Defects, d.Stats.Detected, d.Stats.Attributed, d.Stats.CrashOnly, d.Stats.Classes, d.Stats.Tests)
	if d.Accuracy != nil {
		fmt.Fprintf(os.Stderr, "self-diagnosis accuracy: top-1 %d/%d, top-3 %d/%d\n",
			d.Accuracy.TopHit, d.Accuracy.Evaluated, d.Accuracy.Top3Hit, d.Accuracy.Evaluated)
	}
	for i, c := range d.Candidates {
		if i >= 5 {
			break
		}
		fmt.Fprintf(os.Stderr, "candidate %d: %s score %.3f (%d exact)\n", i+1, c.Fault, c.Score, c.Exact)
	}
	return writeReport(*af.out, func(w *os.File) error { return report.WriteDiagnosisJSON(w, d) })
}

func cmdMinimize(args []string) error {
	fs := flag.NewFlagSet("minimize", flag.ExitOnError)
	af := newAnalysisFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := af.spec(campaign.TypeMinimize)
	if err != nil {
		return err
	}
	an, err := runAnalysis(spec, *af.workers, *af.shards)
	if err != nil {
		return err
	}
	m := an.Minimize
	fmt.Fprintf(os.Stderr, "minimize: %d of %d tests cover all %d attributed defects (%.1f%% reduction, +%d augmented in %d verify rounds)\n",
		len(m.Chosen), m.FullTests, m.Coverable, m.Reduction*100, len(m.Augmented), m.VerifyRounds)
	fmt.Fprintf(os.Stderr, "program: %d -> %d applied tests\n", m.FullProgramTests, m.MinProgramTests)
	if m.Verification != nil {
		if m.Verification.Identical {
			fmt.Fprintf(os.Stderr, "verification: detection vectors byte-identical (%d/%d detected, hash %s)\n",
				m.Verification.MinDetected, m.Verification.Total, m.Verification.MinHash[:12])
		} else {
			fmt.Fprintf(os.Stderr, "verification: %d mismatches remain after repair\n", len(m.Verification.Mismatches))
		}
	}
	return writeReport(*af.out, func(w *os.File) error { return report.WriteMinimizeJSON(w, m) })
}

func cmdRank(args []string) error {
	fs := flag.NewFlagSet("rank", flag.ExitOnError)
	af := newAnalysisFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := af.spec(campaign.TypeRank)
	if err != nil {
		return err
	}
	an, err := runAnalysis(spec, *af.workers, *af.shards)
	if err != nil {
		return err
	}
	r := an.Rank
	tbl := report.NewTable(fmt.Sprintf("Wire vulnerability ranking (%s bus)", r.Bus),
		"wire", "detected", "unique", "over-threshold", "share %")
	for _, wr := range r.Wires {
		tbl.AddRow(wr.Wire+1, wr.Detected, wr.Unique, wr.OverThreshold, wr.Share*100)
	}
	if err := tbl.Write(os.Stderr); err != nil {
		return err
	}
	return writeReport(*af.out, func(w *os.File) error { return report.WriteRankJSON(w, r) })
}

// writeReport renders a JSON document to the -o file, or stdout without one.
func writeReport(path string, write func(*os.File) error) error {
	if path == "" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "report written to %s\n", path)
	return nil
}

// runAnalysis executes an analysis job standalone (local manager) or
// distributed (-workers).
func runAnalysis(spec campaign.Spec, workers string, shards int) (*campaign.Analysis, error) {
	if workers == "" {
		m := campaign.New(campaign.Config{})
		job, err := m.Submit(spec)
		if err != nil {
			return nil, err
		}
		<-job.Done()
		if err := job.Err(); err != nil {
			return nil, err
		}
		an, ok := job.Analysis()
		if !ok {
			return nil, fmt.Errorf("job %s produced no analysis", job.ID())
		}
		return an, nil
	}
	return fleetAnalysis(spec, workers, shards)
}

// fleetAnalysis distributes the base campaign (and minimize verification
// rounds) across fleet workers, then runs the same analysis the standalone
// manager would on the merged outcomes — the resulting report is
// byte-identical to a standalone run's.
func fleetAnalysis(spec campaign.Spec, urls string, shards int) (*campaign.Analysis, error) {
	spec = spec.Normalized()
	coord := fleet.NewCoordinator(fleet.CoordinatorConfig{})
	n := 0
	for _, u := range strings.Split(urls, ",") {
		if u = strings.TrimSpace(u); u != "" {
			coord.Register(u)
			n++
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("no worker URLs in %q", urls)
	}
	// The wire spec is a plain campaign: workers only simulate; type and
	// signature stay client-side, so shard caches are shared with ordinary
	// distributed campaigns of the same spec.
	base := spec
	base.Type, base.Signature = "", nil
	ctx := context.Background()
	res, width, fs, err := coord.RunCampaign(ctx, base, shards)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "fleet campaign: %s bus, %d defects across %d workers (%d shards, %d retries)\n",
		spec.Bus, res.Total, n, fs.Shards, fs.Retries)

	_, models, busID, _, err := resolveTarget(spec.Target, spec.Bus)
	if err != nil {
		return nil, err
	}
	setup := models[busID]
	lib, err := defects.Generate(setup.Nominal, setup.Thresholds,
		defects.Config{Size: spec.Size, Sigma: spec.Sigma, Seed: spec.Seed})
	if err != nil {
		return nil, err
	}
	fullPlan, err := campaign.SpecPlan(base)
	if err != nil {
		return nil, err
	}
	round := 0
	return campaign.AnalyzeOutcomes(spec, res.Outcomes, width, lib, fullPlan,
		func(minPlan *core.Plan) ([]sim.Outcome, error) {
			// Each verification round ships the minimized plan inline, so
			// every worker simulates exactly this plan rather than
			// re-deriving one.
			var buf bytes.Buffer
			if err := core.WritePlan(&buf, minPlan); err != nil {
				return nil, err
			}
			vspec := base
			vspec.Plan = buf.Bytes()
			round++
			vres, _, vfs, err := coord.RunCampaign(ctx, vspec, shards)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "fleet verify round %d: %d shards, %d retries\n", round, vfs.Shards, vfs.Retries)
			return vres.Outcomes, nil
		})
}
