package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/report"
)

// The status subcommand renders a live daemon's health at a glance: the
// /healthz document, the SLO alert list (/alerts), the fleet federation
// summary (/fleet/status, coordinators only), and per-job drift verdicts
// from the campaign list. Endpoints a role does not serve (a coordinator has
// no /v1/campaigns; a standalone node has no /fleet/status) are skipped, so
// one invocation works against any role.
func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	daemon := fs.String("daemon", "http://localhost:8080", "base URL of the xtalkd daemon to query")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := strings.TrimRight(*daemon, "/")
	client := &http.Client{Timeout: *timeout}

	// get decodes one endpoint into v; a 404 reports ok=false with no error
	// (the role does not serve it), anything else non-2xx is an error.
	get := func(path string, v any) (bool, error) {
		resp, err := client.Get(base + path)
		if err != nil {
			return false, err
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			return false, nil
		}
		if resp.StatusCode != http.StatusOK {
			return false, fmt.Errorf("GET %s: %s", path, resp.Status)
		}
		return true, json.NewDecoder(resp.Body).Decode(v)
	}

	var health campaign.Health
	ok, err := get("/healthz", &health)
	if err != nil {
		return fmt.Errorf("daemon %s unreachable: %w", base, err)
	}
	if !ok {
		return fmt.Errorf("daemon %s serves no /healthz", base)
	}
	fmt.Printf("daemon %s: %s (%s role, up %s)\n",
		base, health.Status, health.Role, time.Duration(health.UptimeSeconds*float64(time.Second)).Round(time.Second))
	if len(health.Facts) > 0 {
		keys := make([]string, 0, len(health.Facts))
		for k := range health.Facts {
			if k == "alerts" || k == "scrape_staleness_seconds" {
				continue // rendered from their dedicated endpoints below
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %s: %v\n", k, health.Facts[k])
		}
	}

	var alerts struct {
		Alerts  []obs.Alert    `json:"alerts"`
		Summary map[string]int `json:"summary"`
	}
	if ok, err = get("/alerts", &alerts); err != nil {
		return err
	} else if ok {
		firing := 0
		for _, a := range alerts.Alerts {
			if a.State == obs.AlertFiring.String() || a.State == obs.AlertPending.String() {
				firing++
			}
		}
		fmt.Printf("\nalerts: %d objectives, %d pending/firing\n", len(alerts.Alerts), firing)
		for _, a := range alerts.Alerts {
			if a.State == obs.AlertOK.String() {
				continue
			}
			fmt.Printf("  [%s] %s", a.State, a.Name)
			if a.Reason != "" {
				fmt.Printf(" — %s", a.Reason)
			} else if a.FastBurn > 0 || a.SlowBurn > 0 {
				fmt.Printf(" — burn %.1fx fast / %.1fx slow", a.FastBurn, a.SlowBurn)
			}
			fmt.Println()
		}
	}

	var fstat fleet.FleetStatus
	if ok, err = get("/fleet/status", &fstat); err != nil {
		return err
	} else if ok {
		fmt.Printf("\nfleet: %d/%d workers alive, %d shards in flight, queue depth %d\n",
			fstat.WorkersAlive, len(fstat.Workers), fstat.ShardsInflight, fstat.QueueDepth)
		tbl := report.NewTable("", "worker", "alive", "slots", "busy", "queue", "scrape age")
		for _, w := range fstat.Workers {
			age := "-"
			if w.Scraped {
				age = fmt.Sprintf("%.1fs", w.ScrapeAgeSeconds)
			}
			tbl.AddRow(w.URL, w.Alive, w.Slots, w.BusySlots, w.QueueDepth, age)
		}
		if len(fstat.Workers) > 0 {
			if err := tbl.Write(os.Stdout); err != nil {
				return err
			}
		}
	}

	var jobs []campaign.Status
	if ok, err = get("/v1/campaigns", &jobs); err != nil {
		return err
	} else if ok {
		fmt.Printf("\njobs: %d\n", len(jobs))
		for _, j := range jobs {
			line := fmt.Sprintf("  %s %s %s/%s", j.ID, j.State, j.Spec.Target, j.Spec.Bus)
			if j.Progress.Total > 0 {
				line += fmt.Sprintf(" %d/%d", j.Progress.Done, j.Progress.Total)
			}
			if j.Progress.Drift != "" {
				line += " drift=" + j.Progress.Drift
				if len(j.Progress.DriftReasons) > 0 {
					line += " (" + strings.Join(j.Progress.DriftReasons, "; ") + ")"
				}
			}
			fmt.Println(line)
		}
	}
	return nil
}
