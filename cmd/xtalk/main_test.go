package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected into a buffer and returns what
// it printed alongside fn's error (the command's "exit status").
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	outc := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		outc <- buf.String()
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-outc
	r.Close()
	return out, runErr
}

func TestCmdGenSmoke(t *testing.T) {
	out, err := capture(t, func() error { return cmdGen(nil) })
	if err != nil {
		t.Fatalf("gen failed: %v", err)
	}
	for _, want := range []string{
		"Self-test plan",
		"data", "addr",
		"Session programs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("gen output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdGenVerify(t *testing.T) {
	out, err := capture(t, func() error { return cmdGen([]string{"-verify"}) })
	if err != nil {
		t.Fatalf("gen -verify failed: %v", err)
	}
	if !strings.Contains(out, "verify: every applied test drives its MA vector pair") {
		t.Errorf("gen -verify did not report a clean plan:\n%s", out)
	}
	if strings.Contains(out, "verify FAILED") {
		t.Errorf("gen -verify reported violations:\n%s", out)
	}
}

func TestCmdDefectsSmoke(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdDefects([]string{"-bus", "addr", "-size", "25", "-seed", "3"})
	})
	if err != nil {
		t.Fatalf("defects failed: %v", err)
	}
	for _, want := range []string{
		"25 defects on the addr bus",
		"Over-threshold victims per wire",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("defects output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdDefectsBadBus(t *testing.T) {
	_, err := capture(t, func() error {
		return cmdDefects([]string{"-bus", "ctrl"})
	})
	if err == nil {
		t.Fatal("defects accepted an unknown bus")
	}
}

func TestCmdSimSmoke(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdSim([]string{"-bus", "addr", "-size", "20", "-seed", "7"})
	})
	if err != nil {
		t.Fatalf("sim failed: %v", err)
	}
	for _, want := range []string{
		"campaign: parwan addr bus, 20 defects",
		"coverage:",
		"golden execution time:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sim output missing %q:\n%s", want, out)
		}
	}
	// The paper's headline result at this scale: full coverage.
	if !strings.Contains(out, "coverage: 20/20 = 100.00%") {
		t.Errorf("sim did not report full coverage:\n%s", out)
	}
}
