package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/fleet"
	"repro/internal/report"
)

// startTestWorkers spins up n in-process fleet workers and returns their
// URLs joined as the -workers flag value.
func startTestWorkers(t *testing.T, n int) string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		ts := httptest.NewServer(fleet.NewWorker(campaign.New(campaign.Config{})))
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return strings.Join(urls, ",")
}

// TestFleetMinimizeMatchesStandaloneWideBus is the CLI-level acceptance for
// the wide-bus backend: `xtalk minimize -target widebus16 -workers ...`
// (fleetAnalysis) must render the same minimize report bytes as the
// standalone manager path, verification rounds included.
func TestFleetMinimizeMatchesStandaloneWideBus(t *testing.T) {
	spec := campaign.Spec{
		Target: "widebus16",
		Bus:    "bus",
		Type:   campaign.TypeMinimize,
		Size:   60,
		Seed:   13,
	}
	standalone, err := runAnalysis(spec, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	distributed, err := runAnalysis(spec, startTestWorkers(t, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	var want, got bytes.Buffer
	if err := report.WriteMinimizeJSON(&want, standalone.Minimize); err != nil {
		t.Fatal(err)
	}
	if err := report.WriteMinimizeJSON(&got, distributed.Minimize); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("fleet minimize report differs from standalone (%d vs %d bytes)", got.Len(), want.Len())
	}
	if v := standalone.Minimize.Verification; v == nil || !v.Identical {
		t.Fatalf("minimized wide-bus program did not verify byte-identical: %+v", v)
	}
	t.Logf("widebus16 minimize: %d -> %d tests, fleet report byte-identical (%d bytes)",
		standalone.Minimize.FullTests, len(standalone.Minimize.Chosen), got.Len())
}

// TestCmdSimWideBusSmoke pins the -target flag end to end: the default
// channel resolves to the wide bus's only channel and the campaign reaches
// full coverage.
func TestCmdSimWideBusSmoke(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdSim([]string{"-target", "widebus16", "-size", "20", "-seed", "7"})
	})
	if err != nil {
		t.Fatalf("sim failed: %v", err)
	}
	for _, want := range []string{
		"campaign: widebus16 bus bus, 20 defects",
		"coverage: 20/20 = 100.00%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sim output missing %q:\n%s", want, out)
		}
	}
}

// TestCmdSimBadTarget: an unknown target descriptor fails with a parse
// error rather than silently defaulting to parwan.
func TestCmdSimBadTarget(t *testing.T) {
	_, err := capture(t, func() error {
		return cmdSim([]string{"-target", "i8051", "-size", "5"})
	})
	if err == nil {
		t.Fatal("sim accepted an unknown target")
	}
	_, err = capture(t, func() error {
		return cmdSim([]string{"-target", "widebus16", "-bus", "addr", "-size", "5"})
	})
	if err == nil {
		t.Fatal("sim accepted a channel the target does not have")
	}
}
