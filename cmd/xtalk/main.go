// Command xtalk runs the reproduction's experiments at full scale: test
// program generation, defect-library generation, defect-simulation
// campaigns, the Fig. 11 chart, and the baseline comparison.
//
// Usage:
//
//	xtalk gen     [-compaction] [-sessions N] [-listing]
//	xtalk params  [-width N] [-cth F] [-o file]
//	xtalk defects [-target T] [-bus name] [-size N] [-sigma S] [-seed N]
//	xtalk sim     [-target T] [-bus name] [-size N] [-seed N] [-compaction] [-engine auto|execute|replay|batch]
//	              [-workers url1,url2,...] [-shards N] [-trace out.ndjson]
//	xtalk fig11   [-size N] [-seed N] [-csv] [-engine auto|execute|replay|batch]
//	xtalk compare [-size N] [-seed N]
//	xtalk diagnose [-target T] [-bus name] [-size N] [-seed N] [-signature "dr[3]/fwd,..."] [-o out.json] [-workers ...]
//	xtalk minimize [-target T] [-bus name] [-size N] [-seed N] [-o out.json] [-workers ...]
//	xtalk rank     [-target T] [-bus name] [-size N] [-seed N] [-o out.json] [-workers ...]
//	xtalk infield  [-target T] [-bus name] [-size N] [-seed N] [-sessions N] [-slice-cycles N | -slices N]
//	               [-interval D] [-engine auto|execute|replay|batch] [-o out.ndjson] [-workers ...] [-shards N]
//	xtalk status   [-daemon http://localhost:8080] [-timeout 5s]
//
// The -target flag selects the backend under test: "parwan" (the paper's
// CPU-memory system; the default) or "widebusN" (a synthetic N-wire scripted
// bus, e.g. widebus32). The -bus flag names one of the target's channels
// ("addr" or "data" for parwan, "bus" for wide-bus targets); empty selects
// the address bus for parwan and the first channel otherwise.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bist"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/crosstalk"
	"repro/internal/defects"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/parwan"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/target"
	"repro/internal/tester"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "params":
		err = cmdParams(os.Args[2:])
	case "defects":
		err = cmdDefects(os.Args[2:])
	case "sim":
		err = cmdSim(os.Args[2:])
	case "fig11":
		err = cmdFig11(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "margins":
		err = cmdMargins(os.Args[2:])
	case "diagnose":
		err = cmdDiagnose(os.Args[2:])
	case "minimize":
		err = cmdMinimize(os.Args[2:])
	case "rank":
		err = cmdRank(os.Args[2:])
	case "infield":
		err = cmdInfield(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "xtalk: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xtalk:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: xtalk <command> [flags]

commands:
  gen      generate the self-test plan and report applicability
  params   emit a nominal bus parameter file
  defects  generate a defect library and report its composition
  sim      run a full defect-simulation campaign (E5)
  fig11    regenerate the paper's Fig. 11 coverage chart (E4)
  compare  compare SBST against hardware BIST and external test (E6)
  margins  per-wire worst-case crosstalk margins of a bus description
  diagnose build the detection-set dictionary; localize a failure signature
  minimize set-cover test-program minimization with coverage verification
  rank     per-wire crosstalk vulnerability ranking (Fig. 11 analytics)
  infield  sliced in-field test schedule with convergent coverage accounting
  status   health, SLO alerts, fleet and drift summary of a live xtalkd`)
}

func setups() (sim.BusSetup, sim.BusSetup, error) {
	return sim.DefaultSetups()
}

// resolveTarget parses a target descriptor and a channel name into the
// backend, its per-channel models, and the selected channel. An empty bus
// selects "addr" on parwan (the paper's default experiment) and the target's
// first channel otherwise.
func resolveTarget(targetName, bus string) (target.Target, []sim.BusSetup, core.BusID, string, error) {
	tgt, err := target.Parse(targetName)
	if err != nil {
		return nil, nil, 0, "", err
	}
	topo := tgt.Topology()
	if bus == "" {
		bus = topo.Channels[0].Name
		if tgt.Name() == "parwan" {
			bus = "addr"
		}
	}
	id, ok := topo.Channel(bus)
	if !ok {
		return nil, nil, 0, "", fmt.Errorf("target %s has no bus %q (want one of %v)", tgt.Name(), bus, topo.Names())
	}
	models, err := tgt.BusModels(0)
	if err != nil {
		return nil, nil, 0, "", err
	}
	return tgt, models, id, bus, nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	compaction := fs.Bool("compaction", false, "compact responses in the accumulator (§4.3)")
	sessions := fs.Int("sessions", 0, "maximum follow-up sessions (default 4)")
	listing := fs.Bool("listing", false, "print a disassembly listing of each session program")
	out := fs.String("o", "", "save the plan (programs + metadata) as JSON")
	verify := fs.Bool("verify", false, "verify every applied test drives its vector pair")
	if err := fs.Parse(args); err != nil {
		return err
	}
	plan, err := core.Generate(core.GenConfig{Compaction: *compaction, MaxSessions: *sessions})
	if err != nil {
		return err
	}
	if *verify {
		violations, err := sim.VerifyPlan(plan)
		if err != nil {
			return err
		}
		if len(violations) == 0 {
			fmt.Println("verify: every applied test drives its MA vector pair")
		}
		for _, v := range violations {
			fmt.Println("verify FAILED:", v)
		}
	}
	if *out != "" {
		if err := core.SavePlan(*out, plan); err != nil {
			return err
		}
		fmt.Printf("plan saved to %s\n", *out)
	}
	dTotal, dFirst := plan.AppliedOn(core.DataBus)
	aTotal, aFirst := plan.AppliedOn(core.AddrBus)
	tbl := report.NewTable("Self-test plan", "bus", "MAFs", "first session", "all sessions")
	tbl.AddRow("data", 64, dFirst, dTotal)
	tbl.AddRow("addr", 48, aFirst, aTotal)
	if err := tbl.Write(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	prog := report.NewTable("Session programs", "session", "tests", "bytes", "response cells")
	for _, p := range plan.Programs {
		prog.AddRow(p.Session, len(p.Applied), p.Image.UsedCount(), len(p.ResponseCells))
	}
	if err := prog.Write(os.Stdout); err != nil {
		return err
	}
	if len(plan.Inapplicable) > 0 {
		fmt.Printf("\ninapplicable (%d):\n", len(plan.Inapplicable))
		for _, r := range plan.Inapplicable {
			fmt.Printf("  %v: %s\n", r.MA.Fault, r.Reason)
		}
	}
	if *listing {
		for _, p := range plan.Programs {
			fmt.Printf("\n--- session %d (entry %03x) ---\n%s", p.Session, p.Entry, parwan.Listing(p.Image))
		}
	}
	return nil
}

func cmdParams(args []string) error {
	fs := flag.NewFlagSet("params", flag.ExitOnError)
	width := fs.Int("width", parwan.AddrBits, "bus width in wires")
	cth := fs.Float64("cth", 0, "Cth factor (default 1.55)")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	nom := crosstalk.Nominal(*width)
	th, err := crosstalk.DeriveThresholds(nom, *cth)
	if err != nil {
		return err
	}
	if *out == "" {
		return crosstalk.Write(os.Stdout, nom, th)
	}
	return crosstalk.WriteFile(*out, nom, th)
}

func busSetup(bus string) (sim.BusSetup, bool, error) {
	addr, data, err := setups()
	if err != nil {
		return sim.BusSetup{}, false, err
	}
	switch bus {
	case "addr":
		return addr, false, nil
	case "data":
		return data, true, nil
	default:
		return sim.BusSetup{}, false, fmt.Errorf("unknown bus %q (want addr or data)", bus)
	}
}

func cmdDefects(args []string) error {
	fs := flag.NewFlagSet("defects", flag.ExitOnError)
	targetName := fs.String("target", "", "target backend: parwan (default) or widebusN")
	bus := fs.String("bus", "", "channel to perturb (default: addr for parwan, the target's first channel otherwise)")
	size := fs.Int("size", defects.DefaultLibrarySize, "number of defects")
	sigma := fs.Float64("sigma", defects.DefaultSigma, "capacitance variation sigma")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, models, busID, busName, err := resolveTarget(*targetName, *bus)
	if err != nil {
		return err
	}
	setup := models[busID]
	lib, err := defects.Generate(setup.Nominal, setup.Thresholds,
		defects.Config{Size: *size, Sigma: *sigma, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("%d defects on the %s bus (sigma=%.2f, acceptance %.3g)\n",
		len(lib.Defects), busName, lib.Sigma, lib.AcceptanceRate())
	tbl := report.NewTable("Over-threshold victims per wire", "wire", "defects")
	for w, n := range lib.VictimHistogram() {
		tbl.AddRow(w+1, n)
	}
	return tbl.Write(os.Stdout)
}

func cmdSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	targetName := fs.String("target", "", "target backend: parwan (default) or widebusN")
	bus := fs.String("bus", "", "channel to test (default: addr for parwan, the target's first channel otherwise)")
	size := fs.Int("size", defects.DefaultLibrarySize, "defect library size")
	seed := fs.Int64("seed", 1, "random seed")
	compaction := fs.Bool("compaction", false, "compact responses")
	planFile := fs.String("plan", "", "load a previously saved plan instead of generating")
	engine := fs.String("engine", "auto", "simulation engine: auto, execute, replay, or batch")
	workers := fs.String("workers", "", "comma-separated fleet worker base URLs; runs the campaign distributed")
	shards := fs.Int("shards", 0, "fleet shard count (0 = 4 per worker)")
	traceOut := fs.String("trace", "", "write the run's spans as NDJSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	eng, err := sim.ParseEngine(*engine)
	if err != nil {
		return err
	}
	tgt, models, busID, busName, err := resolveTarget(*targetName, *bus)
	if err != nil {
		return err
	}
	if *workers != "" {
		if *planFile != "" {
			return fmt.Errorf("-plan is not supported with -workers (fleet nodes generate the plan from the spec)")
		}
		return simFleet(*workers, *shards, *traceOut, campaign.Spec{
			Target:     *targetName,
			Bus:        busName,
			Size:       *size,
			Seed:       *seed,
			Compaction: *compaction,
			Engine:     *engine,
		})
	}
	setup := models[busID]
	ctx := context.Background()
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(obs.DefaultTracerCapacity)
		ctx = obs.WithTracer(ctx, tracer, "sim")
	}
	ctx, root := obs.StartSpan(ctx, "sim.run",
		obs.Label{Key: "bus", Value: busName}, obs.Label{Key: "engine", Value: *engine})
	_, planSpan := obs.StartSpan(ctx, "sim.plan")
	var plan *core.Plan
	if *planFile != "" {
		plan, err = core.LoadPlan(*planFile)
	} else {
		plan, err = tgt.Generate(target.GenSpec{Compaction: *compaction})
	}
	planSpan.End()
	if err != nil {
		return err
	}
	_, goldenSpan := obs.StartSpan(ctx, "sim.golden")
	r, err := sim.NewTargetRunner(tgt, plan, models)
	goldenSpan.End()
	if err != nil {
		return err
	}
	lib, err := defects.Generate(setup.Nominal, setup.Thresholds, defects.Config{Size: *size, Seed: *seed})
	if err != nil {
		return err
	}
	cctx, campSpan := obs.StartSpan(ctx, "sim.campaign",
		obs.Label{Key: "defects", Value: fmt.Sprint(len(lib.Defects))})
	res, err := r.CampaignCtx(cctx, busID, lib, sim.CampaignOpts{Engine: eng})
	campSpan.End()
	root.End()
	if err != nil {
		return err
	}
	if tracer != nil {
		if err := writeTraceFile(*traceOut, tracer, "sim"); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (%d spans)\n", *traceOut, len(tracer.Trace("sim")))
	}
	fmt.Printf("campaign: %s %s bus, %d defects\n", tgt.Name(), busName, res.Total)
	fmt.Printf("coverage: %d/%d = %.2f%% (paper: 100%%)\n", res.Detected, res.Total, res.Coverage()*100)
	fmt.Printf("crashed/hung runs counted as detections: %d\n", res.Crashed)
	fmt.Printf("golden execution time: %d CPU cycles across %d sessions (paper: 1720)\n",
		r.GoldenCycles(), len(plan.Programs))
	printEngineStats(eng, r)
	return nil
}

// simFleet runs the campaign distributed across the given worker URLs: a
// client-side fleet coordinator shards the library, dispatches the shards,
// and merges the partial results into the exact single-node result. With
// traceOut, the coordinator's trace — including the worker-side spans shipped
// back in shard responses — is written as NDJSON.
func simFleet(urls string, shards int, traceOut string, spec campaign.Spec) error {
	coord := fleet.NewCoordinator(fleet.CoordinatorConfig{})
	n := 0
	for _, u := range strings.Split(urls, ",") {
		if u = strings.TrimSpace(u); u != "" {
			coord.Register(u)
			n++
		}
	}
	if n == 0 {
		return fmt.Errorf("no worker URLs in %q", urls)
	}
	res, _, fs, err := coord.RunCampaign(context.Background(), spec, shards)
	if err != nil {
		return err
	}
	fmt.Printf("fleet campaign: %s bus, %d defects across %d workers (%d shards, %d retries)\n",
		spec.Bus, res.Total, n, fs.Shards, fs.Retries)
	fmt.Printf("coverage: %d/%d = %.2f%% (paper: 100%%)\n", res.Detected, res.Total, res.Coverage()*100)
	fmt.Printf("crashed/hung runs counted as detections: %d\n", res.Crashed)
	fmt.Printf("engine: %d replay-resolved, %d executed (worker-side attribution)\n",
		fs.ReplayHits, fs.Executed)
	if traceOut != "" {
		if err := writeTraceFile(traceOut, coord.Obs().Tracer, fs.TraceID); err != nil {
			return err
		}
		fmt.Printf("trace %s written to %s (%d spans)\n",
			fs.TraceID, traceOut, len(coord.Obs().Tracer.Trace(fs.TraceID)))
	}
	return nil
}

// writeTraceFile dumps one trace from a collector as NDJSON.
func writeTraceFile(path string, tr *obs.Tracer, traceID string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteNDJSON(f, traceID); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printEngineStats summarizes how the engine resolved the campaign's defect
// runs: replay-tier hits versus full executions, plus channel-memo traffic.
func printEngineStats(eng sim.Engine, r *sim.Runner) {
	st := r.Stats()
	switch eng {
	case sim.Replay:
		fmt.Printf("engine %s: %d replay-resolved, %d screened as detected, %d executed\n",
			eng, st.ReplayHits, st.Screened, st.Executes)
	case sim.Batch:
		fmt.Printf("engine %s: %d swept clean in %d sweeps, %d divergence fallbacks, %d full executions\n",
			eng, st.BatchScreened, st.BatchSweeps, st.Fallbacks, st.Executes)
	default:
		fmt.Printf("engine %s: %d replay-resolved, %d divergence fallbacks, %d full executions\n",
			eng, st.ReplayHits, st.Fallbacks, st.Executes)
	}
	if st.DegradedExecutes > 0 {
		fmt.Printf("engine %s: %d runs degraded to full execution (golden traffic errs; replay unsound)\n",
			eng, st.DegradedExecutes)
	}
	if total := st.MemoHits + st.MemoMisses; total > 0 {
		fmt.Printf("channel memo: %d/%d transmit hits (%.1f%%)\n",
			st.MemoHits, total, 100*float64(st.MemoHits)/float64(total))
	}
}

func cmdFig11(args []string) error {
	fs := flag.NewFlagSet("fig11", flag.ExitOnError)
	bus := fs.String("bus", "addr", "bus to chart: addr (the paper's Fig. 11) or data")
	size := fs.Int("size", defects.DefaultLibrarySize, "defect library size")
	seed := fs.Int64("seed", 1, "random seed")
	csv := fs.Bool("csv", false, "emit CSV instead of a chart")
	engine := fs.String("engine", "auto", "simulation engine: auto, execute, replay, or batch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	eng, err := sim.ParseEngine(*engine)
	if err != nil {
		return err
	}
	addr, data, err := setups()
	if err != nil {
		return err
	}
	setup, isData, err := busSetup(*bus)
	if err != nil {
		return err
	}
	busID := core.AddrBus
	if isData {
		busID = core.DataBus
	}
	lib, err := defects.Generate(setup.Nominal, setup.Thresholds, defects.Config{Size: *size, Seed: *seed})
	if err != nil {
		return err
	}
	pts, err := sim.Fig11CampaignCtx(context.Background(), addr, data, busID, lib, false,
		sim.CampaignOpts{Engine: eng})
	if err != nil {
		return err
	}
	if *csv {
		tbl := report.NewTable("", "line", "individual", "cumulative")
		for _, p := range pts {
			tbl.AddRow(p.Wire+1, p.Individual, p.Cumulative)
		}
		return tbl.WriteCSV(os.Stdout)
	}
	chart := report.NewBarChart(fmt.Sprintf(
		"Fig 11: crosstalk defect coverage of %s-bus MA tests (%d defects)", *bus, len(lib.Defects)))
	for _, p := range pts {
		chart.Add(fmt.Sprintf("line %2d", p.Wire+1), p.Individual, p.Cumulative)
	}
	return chart.Write(os.Stdout)
}

func cmdMargins(args []string) error {
	fs := flag.NewFlagSet("margins", flag.ExitOnError)
	width := fs.Int("width", parwan.AddrBits, "bus width for a nominal description")
	file := fs.String("file", "", "parameter file to analyse instead of the nominal geometry")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var p *crosstalk.Params
	var th crosstalk.Thresholds
	var err error
	if *file != "" {
		p, th, err = crosstalk.ReadFile(*file)
	} else {
		p = crosstalk.Nominal(*width)
		th, err = crosstalk.DeriveThresholds(p, 0)
	}
	if err != nil {
		return err
	}
	ch, err := crosstalk.NewChannel(p, th)
	if err != nil {
		return err
	}
	tbl := report.NewTable(
		fmt.Sprintf("Worst-case MA-pattern margins (Cth = %.0f fF, glitch threshold %.3f Vdd)",
			th.Cth*1e15, th.GlitchFrac),
		"wire", "net coupling (fF)", "C/Cth", "glitch (Vdd)", "delay fwd (ps)", "delay rev (ps)", "errs")
	for _, m := range crosstalk.Margins(ch) {
		tbl.AddRow(m.Wire+1, m.NetCoupling*1e15, m.CthRatio, m.GlitchFrac,
			m.Delay[0]*1e12, m.Delay[1]*1e12, m.Exceeds(th))
	}
	return tbl.Write(os.Stdout)
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	size := fs.Int("size", defects.DefaultLibrarySize, "defect library size")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addr, data, err := setups()
	if err != nil {
		return err
	}
	lib, err := defects.Generate(addr.Nominal, addr.Thresholds, defects.Config{Size: *size, Seed: *seed})
	if err != nil {
		return err
	}
	plan, err := core.Generate(core.GenConfig{})
	if err != nil {
		return err
	}
	r, err := sim.NewRunner(plan, addr, data)
	if err != nil {
		return err
	}
	sbst, err := r.Campaign(core.AddrBus, lib)
	if err != nil {
		return err
	}
	profile := bist.FunctionalProfile{ConstantWires: map[int]uint{11: 0, 10: 0}}
	eng, err := bist.New(addr.Thresholds, parwan.AddrBits, false)
	if err != nil {
		return err
	}
	hw, err := eng.Campaign(lib, profile)
	if err != nil {
		return err
	}
	tbl := report.NewTable("Method comparison (address bus)",
		"method", "coverage %", "area (gates)", "over-tested", "escapes")
	tbl.AddRow("SBST (this paper)", sbst.Coverage()*100, 0, 0, 0)
	tbl.AddRow("hardware BIST [2]", hw.Coverage()*100, bist.AreaOverhead(parwan.AddrBits), hw.OverTested, 0)
	for _, ratio := range []float64{1.0, 0.5, 0.25, 0.1} {
		x, err := tester.New(addr.Thresholds, parwan.AddrBits, false, ratio)
		if err != nil {
			return err
		}
		a, err := x.Campaign(lib)
		if err != nil {
			return err
		}
		tbl.AddRow(fmt.Sprintf("external @ %.0f%% speed", ratio*100),
			a.Coverage()*100, 0, 0, a.Escapes)
	}
	if err := tbl.Write(os.Stdout); err != nil {
		return err
	}
	m := tester.DefaultCostModel()
	fmt.Printf("\nATE cost model: 100MHz=%.1f, 500MHz=%.1f, 1GHz=%.1f, 2GHz=%.1f (relative units)\n",
		m.Cost(100e6), m.Cost(500e6), m.Cost(1e9), m.Cost(2e9))
	fmt.Printf("BIST relative area: %.1f%% of a 5k-gate SoC, %.2f%% of a 500k-gate SoC\n",
		bist.RelativeOverhead(parwan.AddrBits, 5000)*100,
		bist.RelativeOverhead(parwan.AddrBits, 500000)*100)
	_ = data
	return nil
}
