// Control-bus extension: the paper leaves "the testing of control busses"
// as future work (§3/§6). This example runs the repository's control-bus
// self-test: a store/load sequence whose command-strobe transitions carry
// the control bus's maximum-aggressor delay pairs, detecting coupling
// defects between the read and write strobes — and shows why a test-mode
// BIST inevitably over-tests this bus (its glitch patterns need idle or
// double-asserted commands, which functional operation can never produce).
package main

import (
	"fmt"
	"log"

	"repro/internal/crosstalk"
	"repro/internal/ctrltest"
	"repro/internal/soc"
)

func main() {
	prog, err := ctrltest.Generate()
	if err != nil {
		log.Fatal(err)
	}
	a := ctrltest.Analyze()
	fmt.Printf("control-bus fault universe: %d MAFs; %d functionally reachable, %d observable, %d applicable only in BIST test mode\n",
		a.TotalMAFs, a.Reachable, a.Observable, a.BISTOnly)
	fmt.Printf("self-test program covers %d faults with %d response cells\n",
		len(prog.Covered), len(prog.ResponseCells))

	nom := crosstalk.Nominal(soc.CtrlBits)
	th, err := crosstalk.DeriveThresholds(nom, 0)
	if err != nil {
		log.Fatal(err)
	}

	golden, err := prog.Run(nil, th)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden run: halted=%v responses=%v\n", golden.Halted, golden.Responses)

	for _, factor := range []float64{0.9, 1.2, 2.0} {
		p := nom.Clone()
		c := factor * th.Cth
		p.Cc[0][1], p.Cc[1][0] = c, c
		det, err := prog.Detects(p, th)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "clean"
		if det {
			verdict = "DETECTED"
		}
		fmt.Printf("strobe coupling at %.1f x Cth: %s\n", factor, verdict)
	}
}
