// Wide-bus campaign: runs the full crosstalk defect-simulation flow on the
// synthetic scripted-bus backend instead of the Parwan SoC — the same MAF
// model, channel arithmetic, two-tier engine and set-cover minimization,
// applied to a 16/32/64-wire unidirectional bus driven by a scripted
// initiator.
//
// Expected shape: every defect the Gaussian library accepts is detected
// (the MA pairs maximize each victim's aggression, as on Parwan's busses),
// the Auto engine resolves clean defects by trace replay alone, and the
// minimized program covers all attributed defects with far fewer than the
// full 4N tests.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/campaign"
	"repro/internal/defects"
	"repro/internal/sim"
	"repro/internal/target"
)

func main() {
	width := flag.Int("width", 32, "bus width in wires (2..64)")
	size := flag.Int("size", 200, "defect library size")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	tgt, err := target.WideBus(*width)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := tgt.Generate(target.GenSpec{})
	if err != nil {
		log.Fatal(err)
	}
	prog := plan.Programs[0]
	fmt.Printf("target %s: %d MA tests (4N for N=%d), %d-step script\n",
		tgt.Name(), len(prog.Applied), *width, len(prog.Script))

	models, err := tgt.BusModels(0)
	if err != nil {
		log.Fatal(err)
	}
	lib, err := defects.Generate(models[0].Nominal, models[0].Thresholds,
		defects.Config{Size: *size, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("defect library: %d defects (acceptance %.3g)\n",
		len(lib.Defects), lib.AcceptanceRate())

	r, err := sim.NewTargetRunner(tgt, plan, models)
	if err != nil {
		log.Fatal(err)
	}
	res, err := r.Campaign(0, lib)
	if err != nil {
		log.Fatal(err)
	}
	st := r.Stats()
	fmt.Printf("campaign: %d/%d detected (%.1f%%), %d replay-resolved, %d fallbacks\n",
		res.Detected, res.Total, res.Coverage()*100, st.ReplayHits, st.Fallbacks)

	// The same spec the CLI's `-target widebusN` flag builds, run through
	// the campaign manager's minimize job: greedy set cover over the
	// detection-set dictionary, then byte-identity verification of the
	// minimized program.
	mgr := campaign.New(campaign.Config{})
	job, err := mgr.Submit(campaign.Spec{
		Target: tgt.Name(),
		Bus:    "bus",
		Type:   campaign.TypeMinimize,
		Size:   *size,
		Seed:   *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	<-job.Done()
	if err := job.Err(); err != nil {
		log.Fatal(err)
	}
	an, ok := job.Analysis()
	if !ok {
		log.Fatal("minimize job produced no analysis")
	}
	m := an.Minimize
	fmt.Printf("minimize: %d of %d tests cover all %d attributed defects (%.1f%% reduction)\n",
		len(m.Chosen), m.FullTests, m.Coverable, m.Reduction*100)
	if m.Verification != nil && m.Verification.Identical {
		fmt.Printf("verification: detection vectors byte-identical (%d/%d detected)\n",
			m.Verification.MinDetected, m.Verification.Total)
	}
}
