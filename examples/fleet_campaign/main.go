// Example fleet_campaign demonstrates the distributed campaign subsystem
// (internal/fleet) end to end, in one process: it starts three fleet worker
// nodes on loopback ports, registers them with a coordinator, runs an
// address-bus defect campaign sharded across the fleet — and kills one
// worker after it serves its first shard, so the coordinator retries the
// lost shards on the survivors. The merged result is then rendered and
// compared byte for byte against a single-node run of the same spec.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/fleet"
	"repro/internal/parwan"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	spec := campaign.Spec{Bus: "addr", Size: 240, Seed: 7, TargetOnly: true}

	// Three worker nodes, each with its own campaign manager (own caches,
	// own bounded pool) — exactly what `xtalkd -role worker` serves.
	coord := fleet.NewCoordinator(fleet.CoordinatorConfig{Backoff: 20 * time.Millisecond})
	var victim *http.Server
	var victimShards atomic.Int32
	for i := 0; i < 3; i++ {
		mgr := campaign.New(campaign.Config{})
		handler := http.Handler(fleet.NewWorker(mgr))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := &http.Server{Handler: handler}
		if i == 2 {
			// Worker 3 dies after serving its first shard: the response is
			// written, then the node goes away mid-campaign.
			victim = srv
			inner := handler
			srv.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				inner.ServeHTTP(w, r)
				if victimShards.Add(1) == 1 {
					fmt.Println("worker 3: served one shard; going down")
					go victim.Close()
				}
			})
		}
		go srv.Serve(ln)
		url := "http://" + ln.Addr().String()
		coord.Register(url)
		fmt.Printf("worker %d: %s\n", i+1, url)
	}

	fmt.Printf("\nfleet campaign: %s bus, %d defects, seed %d\n", spec.Bus, spec.Size, spec.Seed)
	res, width, fs, err := coord.RunCampaign(context.Background(), spec, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged %d shards (%d retries after the worker loss): %d/%d detected (%.1f%% coverage)\n",
		fs.Shards, fs.Retries, res.Detected, res.Total, res.Coverage()*100)
	for _, w := range coord.Workers() {
		fmt.Printf("  %s  alive=%-5v shards=%d failures=%d\n", w.URL, w.Alive, w.Shards, w.Failures)
	}

	// The coordinator's span collector holds the whole distributed trace:
	// worker-side spans rode back in each ShardResponse and were ingested
	// under their dispatching span, so the tree nests across nodes.
	fmt.Printf("\ntrace %s (coordinator and worker spans, nested)\n", fs.TraceID)
	spans := coord.Obs().Tracer.Trace(fs.TraceID)
	parent := make(map[string]string, len(spans))
	for _, s := range spans {
		parent[s.ID] = s.Parent
	}
	for _, s := range spans {
		depth := 0
		for p := s.Parent; p != ""; p = parent[p] {
			depth++
		}
		fmt.Printf("  %*s%-16s %s\n", 2*depth, "", s.Name, s.Duration.Round(time.Microsecond))
	}

	// The same campaign on a single node, through the same campaign engine.
	mgr := campaign.New(campaign.Config{})
	outcomes, _, err := mgr.RunShard(context.Background(), spec, 0, spec.Size)
	if err != nil {
		log.Fatal(err)
	}
	single := sim.Aggregate(spec.BusID(), outcomes)

	var fleetJSON, singleJSON bytes.Buffer
	if err := report.WriteCampaignJSON(&fleetJSON, res, width); err != nil {
		log.Fatal(err)
	}
	if err := report.WriteCampaignJSON(&singleJSON, single, parwan.AddrBits); err != nil {
		log.Fatal(err)
	}
	if bytes.Equal(fleetJSON.Bytes(), singleJSON.Bytes()) {
		fmt.Printf("\nfleet result is byte-identical to the single-node run (%d bytes of campaign JSON)\n",
			fleetJSON.Len())
	} else {
		log.Fatalf("fleet result diverged from the single-node run (%d vs %d bytes)",
			fleetJSON.Len(), singleJSON.Len())
	}
}
