// Example campaign_service demonstrates the service tier end to end: it
// starts the xtalkd HTTP API in-process on a loopback port, submits an
// address-bus campaign, streams progress, fetches the JSON result, and shows
// that a resubmission of the same spec hits the golden-runner and
// defect-library caches.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/campaign"
)

func main() {
	mgr := campaign.New(campaign.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: campaign.NewServer(mgr)}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Println("xtalkd API serving on", base)

	spec := `{"bus":"addr","size":120,"seed":1,"target_only":true}`
	fmt.Printf("\nPOST /v1/campaigns  %s\n", spec)
	resp, err := http.Post(base+"/v1/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	decodeInto(resp, &st)
	fmt.Println("accepted as job", st.ID)

	// Stream progress events until the job finishes.
	fmt.Printf("\nGET /v1/campaigns/%s/watch\n", st.ID)
	watch, err := http.Get(base + "/v1/campaigns/" + st.ID + "/watch")
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(watch.Body)
	for sc.Scan() {
		var p struct {
			State    string `json:"state"`
			Done     int    `json:"done"`
			Total    int    `json:"total"`
			Detected int    `json:"detected"`
		}
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %4d/%4d done, %4d detected\n", p.State, p.Done, p.Total, p.Detected)
	}
	watch.Body.Close()

	fmt.Printf("\nGET /v1/campaigns/%s/result\n", st.ID)
	res, err := http.Get(base + "/v1/campaigns/" + st.ID + "/result")
	if err != nil {
		log.Fatal(err)
	}
	var result struct {
		Bus      string  `json:"bus"`
		Total    int     `json:"total"`
		Detected int     `json:"detected"`
		Coverage float64 `json:"coverage"`
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if err := json.Unmarshal(body, &result); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s bus: %d/%d defects detected (%.1f%% coverage), %d bytes of JSON\n",
		result.Bus, result.Detected, result.Total, result.Coverage*100, len(body))

	// Resubmit the same spec: the golden runner and the defect library are
	// cached, so the job costs only the defect runs themselves.
	fmt.Println("\nPOST /v1/campaigns (same spec again)")
	resp, err = http.Post(base+"/v1/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		log.Fatal(err)
	}
	decodeInto(resp, &st)
	for {
		stat, err := http.Get(base + "/v1/campaigns/" + st.ID)
		if err != nil {
			log.Fatal(err)
		}
		var s struct {
			State        string `json:"state"`
			GoldenCached bool   `json:"golden_cached"`
			LibCached    bool   `json:"library_cached"`
		}
		decodeInto(stat, &s)
		if s.State == "done" {
			fmt.Printf("  job %s done; golden cache hit: %v, library cache hit: %v\n",
				st.ID, s.GoldenCached, s.LibCached)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	metrics, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGET /metrics (sample lines)")
	b, _ := io.ReadAll(metrics.Body)
	metrics.Body.Close()
	for _, line := range bytes.Split(bytes.TrimSpace(b), []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("#")) {
			fmt.Println(" ", string(line))
		}
	}

	// The flight recorder holds the service's recent structured events —
	// job transitions with their IDs — and each job's trace is one GET away.
	fmt.Println("\nGET /debug/events (types)")
	events, err := http.Get(base + "/debug/events")
	if err != nil {
		log.Fatal(err)
	}
	var evs []struct {
		Type   string            `json:"type"`
		Fields map[string]string `json:"fields"`
	}
	decodeInto(events, &evs)
	for _, ev := range evs {
		fmt.Printf("  %-12s job=%s\n", ev.Type, ev.Fields["job"])
	}

	fmt.Printf("\nGET /debug/trace/%s\n", st.ID)
	trace, err := http.Get(base + "/debug/trace/" + st.ID)
	if err != nil {
		log.Fatal(err)
	}
	tb, _ := io.ReadAll(trace.Body)
	trace.Body.Close()
	for _, line := range bytes.Split(bytes.TrimSpace(tb), []byte("\n")) {
		var span struct {
			Name     string `json:"name"`
			Parent   string `json:"parent"`
			Duration int64  `json:"duration_ns"`
		}
		if err := json.Unmarshal(line, &span); err != nil {
			log.Fatal(err)
		}
		indent := "  "
		if span.Parent != "" {
			indent = "    "
		}
		fmt.Printf("%s%-14s %s\n", indent, span.Name, time.Duration(span.Duration))
	}
}

func decodeInto(resp *http.Response, v any) {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
