// Quickstart: generate the software-based self-test plan for the Parwan
// CPU-memory system, run it on a defect-free chip, then on a chip with a
// crosstalk defect, and compare the unloaded responses — the paper's whole
// flow in one file.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	// 1. Generate the self-test plan: 64 data-bus and up to 48 address-bus
	// maximum-aggressor tests embedded into Parwan programs.
	plan, err := core.Generate(core.GenConfig{})
	if err != nil {
		log.Fatal(err)
	}
	dTotal, _ := plan.AppliedOn(core.DataBus)
	aTotal, _ := plan.AppliedOn(core.AddrBus)
	fmt.Printf("plan: %d data-bus tests, %d address-bus tests, %d session program(s)\n",
		dTotal, aTotal, len(plan.Programs))

	// 2. Golden run on the defect-free busses.
	addr, data, err := sim.DefaultSetups()
	if err != nil {
		log.Fatal(err)
	}
	runner, err := sim.NewRunner(plan, addr, data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden run: %d CPU cycles (paper's system: 1720)\n", runner.GoldenCycles())

	// 3. Manufacture a defective chip: Gaussian process variation raised
	// wire 6's coupling on the address bus past the detectability
	// threshold Cth.
	defective := addr.Nominal.Clone()
	scale := 1.25 * addr.Thresholds.Cth / defective.NetCoupling(6)
	for j := 0; j < defective.Width; j++ {
		if j != 6 {
			defective.Cc[6][j] *= scale
			defective.Cc[j][6] *= scale
		}
	}
	fmt.Printf("injected defect: wire 6 net coupling %.0f fF (Cth = %.0f fF)\n",
		defective.NetCoupling(6)*1e15, addr.Thresholds.Cth*1e15)

	// 4. Run the self-test on the defective chip and compare responses.
	out, err := runner.RunDefect(core.AddrBus, defective)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("defect detected: %v\n", out.Detected)
	if len(out.DetectedBy) > 0 {
		fmt.Println("detected by MA tests:")
		for _, f := range out.DetectedBy {
			fmt.Printf("  %v\n", f)
		}
	}

	// 5. Sanity check: the golden parameters are not flagged.
	clean, err := runner.RunDefect(core.AddrBus, addr.Nominal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("defect-free chip flagged: %v\n", clean.Detected)
}
