// Address-bus campaign: reproduces the paper's Fig. 11 — per-interconnect
// individual and cumulative crosstalk defect coverage of the MA test
// programs — on a freshly generated Gaussian defect library.
//
// Expected shape (paper §5): the MA tests for the centre interconnects have
// the most coverage, the side interconnects' tests have little or none (no
// perturbation pushes their small nominal coupling past Cth), and the
// cumulative coverage reaches 100%.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/defects"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	size := flag.Int("size", 300, "defect library size (paper: 1000)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	addr, data, err := sim.DefaultSetups()
	if err != nil {
		log.Fatal(err)
	}
	lib, err := defects.Generate(addr.Nominal, addr.Thresholds,
		defects.Config{Size: *size, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("defect library: %d defects (Gaussian sigma=%.2f, 3-sigma=%.0f%%, acceptance %.3g)\n",
		len(lib.Defects), lib.Sigma, lib.Sigma*300, lib.AcceptanceRate())

	hist := lib.VictimHistogram()
	fmt.Println("over-threshold victims per wire:", hist)

	pts, err := sim.Fig11Campaign(addr, data, core.AddrBus, lib, false)
	if err != nil {
		log.Fatal(err)
	}
	chart := report.NewBarChart("Fig 11: defect coverage per address-bus MA test group")
	for _, p := range pts {
		chart.Add(fmt.Sprintf("line %2d", p.Wire+1), p.Individual, p.Cumulative)
	}
	fmt.Print(chart.String())
	fmt.Printf("\ncumulative coverage: %.1f%% (paper: 100%%)\n", pts[len(pts)-1].Cumulative*100)
}
