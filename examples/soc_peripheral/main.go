// Peripheral-core extension: the paper notes (§3, §6) that because
// non-memory cores are addressed through the same memory-mapped I/O
// mechanism, the methodology extends to the interconnect between the CPU
// and any core. This example hand-writes a self-test program (through the
// package's assembler) that applies maximum-aggressor vector pairs to the
// data bus while talking to a memory-mapped register-file core, and shows a
// crosstalk defect on the bus corrupting the register traffic.
package main

import (
	"fmt"
	"log"

	"repro/internal/crosstalk"
	"repro/internal/maf"
	"repro/internal/memory"
	"repro/internal/parwan"
	"repro/internal/soc"
)

// The register file occupies all of page F: the peripheral's sparse decoder
// aliases the 16 registers across the 256-byte window, as such decoders
// commonly do.
const peripheralBase = 0xF00

// pageAliased presents a 16-register file as a full 256-byte page; offsets
// alias modulo the register count (memory.RegisterFile already wraps).
type pageAliased struct{ *memory.RegisterFile }

func (pageAliased) Size() int { return parwan.PageSize }

// program applies two data-bus MA pairs through the peripheral:
//   - CPU -> core: positive glitch on data wire 3, pair (00000000, 11110111):
//     the store's offset byte (00) is v1, the stored accumulator (F7) is v2.
//   - core -> CPU: the read-back of the register carries the pair again in
//     the other direction.
//
// Responses land in RAM at 2:00 and 2:01 for the tester to unload.
const program = `
	lda 1:10        ; accumulator := v2 = 11110111
	sta f:00        ; apply (v1=00000000 offset byte, v2=F7) CPU -> core
	lda f:00        ; read the register back (core -> CPU direction)
	sta 2:00        ; response 1: what the CPU got back
	lda 1:11        ; second pattern: negative glitch on wire 4, v2 = 00010000
	sta f:ff        ; offset byte v1 = 11111111, register 15 via aliasing
	lda f:ff
	sta 2:01        ; response 2
halt:	jmp halt
	.org 1:10
	.byte 0xF7, 0x10
`

func buildSystem(dataDefect bool) (*soc.System, *memory.RegisterFile, error) {
	nomData := crosstalk.Nominal(parwan.DataBits)
	thData, err := crosstalk.DeriveThresholds(nomData, 0)
	if err != nil {
		return nil, nil, err
	}
	params := nomData
	if dataDefect {
		params = nomData.Clone()
		const victim = 3
		scale := 1.3 * thData.Cth / params.NetCoupling(victim)
		for j := 0; j < params.Width; j++ {
			if j != victim {
				params.Cc[victim][j] *= scale
				params.Cc[j][victim] *= scale
			}
		}
	}
	dataCh, err := crosstalk.NewChannel(params, thData)
	if err != nil {
		return nil, nil, err
	}
	rf := memory.NewRegisterFile(16)
	sys, err := soc.New(soc.Config{
		DataChannel: dataCh,
		Peripherals: []soc.Region{{Base: peripheralBase, Dev: pageAliased{rf}}},
	})
	return sys, rf, err
}

func run(sys *soc.System, im *parwan.Image) (r1, r2 uint8, err error) {
	sys.LoadImage(im)
	if _, err := sys.Run(1000); err != nil {
		return 0, 0, err
	}
	if !sys.CPU.Halted() {
		return 0, 0, fmt.Errorf("program did not halt")
	}
	return sys.Peek(0x200), sys.Peek(0x201), nil
}

func main() {
	im, _, err := parwan.AssembleString(program)
	if err != nil {
		log.Fatal(err)
	}

	good, rfGood, err := buildSystem(false)
	if err != nil {
		log.Fatal(err)
	}
	g1, g2, err := run(good, im)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("defect-free chip: responses %02x %02x, register0=%02x accesses R=%d W=%d\n",
		g1, g2, rfGood.Peek(0), rfGood.ReadCount, rfGood.WriteCount)

	bad, _, err := buildSystem(true)
	if err != nil {
		log.Fatal(err)
	}
	b1, b2, err := run(bad, im)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("defective chip:   responses %02x %02x\n", b1, b2)

	if b1 != g1 || b2 != g2 {
		fmt.Println("crosstalk defect on the CPU-core data bus DETECTED by the self-test")
	} else {
		fmt.Println("defect escaped (unexpected)")
	}

	// The first pattern is exactly the paper's §4.1 example pair.
	v1, v2 := maf.Vectors(maf.PositiveGlitch, 3, parwan.DataBits)
	fmt.Printf("applied MA pair for gp on wire 4 (line numbering from 1): (%s, %s)\n", v1, v2)
}
