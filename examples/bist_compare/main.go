// Baseline comparison: software-based self-test (this paper) against the
// hardware BIST of DAC 2000 [2] and an external tester, on one defect
// library — regenerating the paper's §1 comparison claims:
//
//   - SBST needs no extra hardware and applies only functional-mode
//     patterns, so it cannot over-test;
//   - hardware BIST pays an area overhead that is unacceptable for small
//     systems, and its test-mode patterns over-test defects that can never
//     corrupt functional traffic (yield loss);
//   - an external tester below system speed misses marginal delay defects,
//     and an at-speed external tester is prohibitively expensive.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bist"
	"repro/internal/core"
	"repro/internal/defects"
	"repro/internal/parwan"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tester"
)

func main() {
	size := flag.Int("size", 250, "defect library size")
	flag.Parse()

	addr, data, err := sim.DefaultSetups()
	if err != nil {
		log.Fatal(err)
	}
	lib, err := defects.Generate(addr.Nominal, addr.Thresholds, defects.Config{Size: *size, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// SBST: the generated self-test plan in functional mode.
	plan, err := core.Generate(core.GenConfig{})
	if err != nil {
		log.Fatal(err)
	}
	runner, err := sim.NewRunner(plan, addr, data)
	if err != nil {
		log.Fatal(err)
	}
	sbst, err := runner.Campaign(core.AddrBus, lib)
	if err != nil {
		log.Fatal(err)
	}

	// Hardware BIST: every MA pattern in test mode; the functional profile
	// freezes the top two address wires (a system populating a quarter of
	// its address space), so some detections are over-testing.
	profile := bist.FunctionalProfile{ConstantWires: map[int]uint{11: 0, 10: 0}}
	engine, err := bist.New(addr.Thresholds, parwan.AddrBits, false)
	if err != nil {
		log.Fatal(err)
	}
	hw, err := engine.Campaign(lib, profile)
	if err != nil {
		log.Fatal(err)
	}

	tbl := report.NewTable("Crosstalk test methods on one defect library (address bus)",
		"method", "coverage %", "extra gates", "over-tested", "at-speed escapes")
	tbl.AddRow("SBST (this paper)", sbst.Coverage()*100, 0, 0, 0)
	tbl.AddRow("hardware BIST [2]", hw.Coverage()*100, bist.AreaOverhead(parwan.AddrBits), hw.OverTested, 0)
	for _, ratio := range []float64{0.5, 0.25} {
		x, err := tester.New(addr.Thresholds, parwan.AddrBits, false, ratio)
		if err != nil {
			log.Fatal(err)
		}
		a, err := x.Campaign(lib)
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddRow(fmt.Sprintf("external tester @ %.0f%%", ratio*100),
			a.Coverage()*100, 0, 0, a.Escapes)
	}
	fmt.Print(tbl.String())

	fmt.Printf("\nBIST over-test rate: %.1f%% of its detections are functionally irrelevant (yield loss)\n",
		hw.OverTestRate()*100)
	fmt.Printf("BIST area: %.1f%% of a 5k-gate SoC vs %.2f%% of a 500k-gate SoC\n",
		bist.RelativeOverhead(parwan.AddrBits, 5000)*100,
		bist.RelativeOverhead(parwan.AddrBits, 500000)*100)
	m := tester.DefaultCostModel()
	fmt.Printf("ATE cost to test at speed: %.1fx a low-speed tester at 1 GHz, %.1fx at 2 GHz\n",
		m.Cost(1e9), m.Cost(2e9))
	fmt.Printf("SBST golden execution: %d CPU cycles, loaded/unloaded by a low-speed tester\n",
		runner.GoldenCycles())
}
