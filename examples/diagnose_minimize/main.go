// Example diagnose_minimize demonstrates the diagnosis subsystem end to
// end, straight through the campaign manager (the same path xtalkd serves):
//
//  1. a rank job reproduces Fig. 11's centre-vs-side wire vulnerability
//     gradient from the campaign's detection sets;
//  2. a diagnose job builds the fault dictionary and localizes an observed
//     failure signature to ranked (wire, fault-kind) candidates;
//  3. a minimize job shrinks the test set by greedy set-cover, repairs the
//     context-dependent detections by re-simulation, and proves the
//     minimized program's per-defect detection vector byte-identical to
//     the full program's.
package main

import (
	"fmt"
	"log"

	"repro/internal/campaign"
)

func main() {
	mgr := campaign.New(campaign.Config{})
	base := campaign.Spec{Bus: "addr", Size: 120, Seed: 1, TargetOnly: true}

	// 1. Per-wire vulnerability ranking (Fig. 11's gradient).
	rankSpec := base
	rankSpec.Type = campaign.TypeRank
	rank := run(mgr, rankSpec).Rank
	fmt.Printf("rank: %s bus, %d wires\n", rank.Bus, len(rank.Wires))
	for i, w := range rank.Wires {
		if i == 3 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  wire %2d: %3d defects detected (%d uniquely), %.1f%% share\n",
			w.Wire+1, w.Detected, w.Unique, w.Share*100)
	}
	side := rank.Wires[len(rank.Wires)-1]
	fmt.Printf("  side wire %d trails with %d (centre >> side, as in Fig. 11)\n\n",
		side.Wire+1, side.Detected)

	// 2. Fault dictionary + localization of a failure signature: suppose a
	// tester observed exactly these MA tests failing on a returned part.
	diagSpec := base
	diagSpec.Type = campaign.TypeDiagnose
	diagSpec.Signature = []string{"dr[3]/fwd", "gp[2]/fwd"}
	diag := run(mgr, diagSpec).Diagnosis
	fmt.Printf("diagnose: %d/%d defects detected, %d signature classes over %d tests\n",
		diag.Stats.Detected, diag.Stats.Defects, diag.Stats.Classes, diag.Stats.Tests)
	fmt.Printf("self-diagnosis accuracy: top-1 %d/%d, top-3 %d/%d\n",
		diag.Accuracy.TopHit, diag.Accuracy.Evaluated,
		diag.Accuracy.Top3Hit, diag.Accuracy.Evaluated)
	fmt.Printf("signature %v localizes to:\n", diagSpec.Signature)
	for i, c := range diag.Candidates {
		if i == 3 {
			break
		}
		fmt.Printf("  %d. %-10s score %.3f (%d exact dictionary matches)\n",
			i+1, c.Fault, c.Score, c.Exact)
	}
	fmt.Println()

	// 3. Set-cover minimization with verified coverage.
	minSpec := base
	minSpec.Type = campaign.TypeMinimize
	min := run(mgr, minSpec).Minimize
	fmt.Printf("minimize: %d of %d dictionary tests cover all %d attributed defects\n",
		len(min.Chosen), min.FullTests, min.Coverable)
	fmt.Printf("  +%d tests augmented over %d verify rounds (context-dependent detections)\n",
		len(min.Augmented), min.VerifyRounds)
	fmt.Printf("  program: %d -> %d applied tests\n", min.FullProgramTests, min.MinProgramTests)
	v := min.Verification
	if !v.Identical {
		log.Fatalf("verification failed: %d mismatches", len(v.Mismatches))
	}
	fmt.Printf("  verification: %d/%d detected, detection vectors byte-identical (hash %s)\n",
		v.MinDetected, v.Total, v.MinHash[:12])
}

// run submits a spec and waits the job out, returning its analysis.
func run(mgr *campaign.Manager, spec campaign.Spec) *campaign.Analysis {
	job, err := mgr.Submit(spec)
	if err != nil {
		log.Fatal(err)
	}
	<-job.Done()
	if err := job.Err(); err != nil {
		log.Fatal(err)
	}
	an, ok := job.Analysis()
	if !ok {
		log.Fatalf("job %s produced no analysis", job.ID())
	}
	return an
}
